package dejavuzz

import (
	"encoding/json"
	"strings"
	"testing"

	"dejavuzz/internal/core"
)

// coreOptions lowers wire options onto the engine options they select —
// the semantic identity JSON round-trips must preserve.
func coreOptions(t *testing.T, o Options) core.Options {
	t.Helper()
	c, err := o.Campaign()
	if err != nil {
		t.Fatalf("Campaign(%+v): %v", o, err)
	}
	return c.opts
}

// TestOptionsJSONRoundTrip drives every field shape through
// MarshalJSON/UnmarshalJSON and asserts the decoded options select exactly
// the same campaign. The explicit-zero cases are the regression guard the
// wire format exists for: `{"seed":0}` and `{}` are different campaigns,
// and a marshal that drops an explicit zero (or an unmarshal that misses
// key presence) silently swaps seed 0 / 0 iterations for the defaults.
func TestOptionsJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		o    Options
	}{
		{"zero-value", Options{}},
		{"explicit-zero-seed", Options{SeedSet: true}},
		{"explicit-zero-iterations", Options{IterationsSet: true}},
		{"explicit-zeros-both", Options{SeedSet: true, IterationsSet: true}},
		{"nonzero-seed-without-marker", Options{Seed: 42}},
		{"nonzero-iterations-without-marker", Options{Iterations: 64}},
		{"target-only", Options{Target: "isasim"}},
		{"variant-random", Options{Variant: VariantNameRandom}},
		{"scenario-filter", Options{Scenarios: []string{"cache-occupancy", "branch-mispredict"}}},
		{"scheduler-ema", Options{Scheduler: SchedulerEMA}},
		{"all-knobs", Options{
			Target: "xiangshan", Seed: -7, SeedSet: true,
			Iterations: 256, IterationsSet: true,
			Workers: 4, Shards: 16, MergeEvery: 32, MaxCycles: 5000,
			SecretRetries: 3, Variant: VariantNameRandom,
			Scenarios:          []string{"page-fault", "stl-forward-chain"},
			Scheduler:          SchedulerEMA,
			NoCoverageFeedback: true, NoLiveness: true, NoReduction: true,
			Bugless: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(tc.o)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var got Options
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			want := coreOptions(t, tc.o)
			if gotOpts := coreOptions(t, got); !gotOpts.EquivalentTo(want) || gotOpts.Normalized().Workers != want.Normalized().Workers {
				t.Fatalf("round trip through %s changed the campaign:\n got %+v\nwant %+v", data, gotOpts, want)
			}
			// Second trip must be a fixed point byte-for-byte.
			data2, err := json.Marshal(got)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(data2) != string(data) {
				t.Fatalf("marshal not stable: %s then %s", data, data2)
			}
		})
	}
}

// TestOptionsJSONExplicitZeros pins the wire encoding itself: explicit
// zeros appear as keys, defaults disappear entirely.
func TestOptionsJSONExplicitZeros(t *testing.T) {
	data, err := json.Marshal(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Fatalf("zero Options marshals as %s, want {}", data)
	}

	data, err = json.Marshal(Options{SeedSet: true, IterationsSet: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"seed":0`, `"iterations":0`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("explicit zeros marshal as %s, missing %s", data, key)
		}
	}

	var got Options
	if err := json.Unmarshal([]byte(`{"seed":0,"iterations":0}`), &got); err != nil {
		t.Fatal(err)
	}
	if !got.SeedSet || !got.IterationsSet {
		t.Fatalf("key presence must set the explicit-zero markers: %+v", got)
	}
	if got.EffectiveSeed() != 0 || got.EffectiveIterations() != 0 {
		t.Fatalf("explicit zeros must win over defaults: seed=%d iters=%d",
			got.EffectiveSeed(), got.EffectiveIterations())
	}

	got = Options{}
	if err := json.Unmarshal([]byte(`{}`), &got); err != nil {
		t.Fatal(err)
	}
	if got.SeedSet || got.IterationsSet {
		t.Fatalf("absent keys must not set markers: %+v", got)
	}
	if got.EffectiveSeed() != 1 || got.EffectiveIterations() != 100 {
		t.Fatalf("defaults: seed=%d iters=%d, want 1/100", got.EffectiveSeed(), got.EffectiveIterations())
	}
}

// TestOptionsJSONBadVariant checks decode-time validation: an unknown
// variant never reaches campaign construction.
func TestOptionsJSONBadVariant(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"variant":"quantum"}`), &o); err == nil {
		t.Fatal("unknown variant must fail to decode")
	}
}

// TestOptionsJSONBadScenario checks decode-time validation of the scenario
// filter: an unregistered family never reaches campaign construction.
func TestOptionsJSONBadScenario(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"scenarios":["branch-mispredict","warp-drive"]}`), &o); err == nil {
		t.Fatal("unknown scenario family must fail to decode")
	}
	if err := json.Unmarshal([]byte(`{"scenarios":["cache-occupancy"]}`), &o); err != nil {
		t.Fatalf("valid scenario filter failed to decode: %v", err)
	}
}

// TestOptionsJSONBadScheduler checks decode-time validation of the
// scheduler policy: an unknown name never reaches campaign construction,
// and both known policies (plus the empty default) decode cleanly.
func TestOptionsJSONBadScheduler(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"scheduler":"thompson"}`), &o); err == nil {
		t.Fatal("unknown scheduler policy must fail to decode")
	}
	for _, ok := range []string{`{"scheduler":"ucb"}`, `{"scheduler":"ema"}`, `{}`} {
		if err := json.Unmarshal([]byte(ok), &o); err != nil {
			t.Fatalf("valid scheduler %s failed to decode: %v", ok, err)
		}
	}
}

// TestOptionsJSONUnknownKeys: a misspelled option must fail loudly, not
// silently decode to a default-value campaign — even through the custom
// UnmarshalJSON, which outer DisallowUnknownFields decoders cannot reach.
func TestOptionsJSONUnknownKeys(t *testing.T) {
	var o Options
	if err := json.Unmarshal([]byte(`{"no_feedback":true}`), &o); err == nil {
		t.Fatal("misspelled key (no_feedback vs no_coverage_feedback) must fail to decode")
	}
	if err := json.Unmarshal([]byte(`{"seeds":[1,2]}`), &o); err == nil {
		t.Fatal("unknown key must fail to decode")
	}
}

// TestOptionsCampaignEquivalence proves the wire path and the functional-
// option path build determinism-equivalent campaigns: a campaign created
// over the wire reports exactly what the same campaign built in-process
// reports.
func TestOptionsCampaignEquivalence(t *testing.T) {
	wire := Options{Target: "isasim", Seed: 9, Iterations: 24, MergeEvery: 8}
	cw, err := wire.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := New("isasim", WithSeed(9), WithIterations(24), WithMergeEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	if !cw.opts.EquivalentTo(cf.opts) {
		t.Fatalf("wire options %+v not equivalent to functional options %+v", cw.opts, cf.opts)
	}
}
