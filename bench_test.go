package dejavuzz

// One benchmark per evaluation artifact (Tables 2-5, Figures 6-7, the §6.3
// liveness evaluation) plus ablation benches for the design choices called
// out in DESIGN.md. The experiment harnesses print the paper-shaped rows;
// here they run at reduced scale under testing.B so `go test -bench=.`
// regenerates every result. cmd/dvz-experiments runs them at full scale.

import (
	"io"
	"testing"
	"time"

	"dejavuzz/internal/core"
	"dejavuzz/internal/experiments"
	"dejavuzz/internal/gen"
	"dejavuzz/internal/uarch"
)

// BenchmarkTable2CoreSummary regenerates the core-summary table (model
// elaboration and statistics).
func BenchmarkTable2CoreSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard)
	}
}

// BenchmarkTable3TrainingOverhead regenerates the training-overhead table:
// DejaVuzz vs DejaVuzz* vs SpecDoctor across all eight window types on both
// cores.
func BenchmarkTable3TrainingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiments.Table3(io.Discard, 2, int64(i)+1)
		if len(results) != 2 {
			b.Fatal("expected results for both cores")
		}
	}
}

// BenchmarkTable4IFTOverhead regenerates the instrumentation/simulation
// overhead comparison (base vs CellIFT vs diffIFT).
func BenchmarkTable4IFTOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, 2*time.Second, 3000)
	}
}

// BenchmarkFigure6TaintTraces regenerates the per-cycle taint-sum traces for
// the five attacks under diffIFT, diffIFT_FN and CellIFT.
func BenchmarkFigure6TaintTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Figure6(io.Discard, 4000)
		if len(series) != 15 {
			b.Fatalf("expected 15 series, got %d", len(series))
		}
	}
}

// BenchmarkFigure7Coverage regenerates the coverage-growth comparison
// (DejaVuzz vs DejaVuzz− vs SpecDoctor replay).
func BenchmarkFigure7Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(io.Discard, 30, 1, int64(i)+1)
	}
}

// BenchmarkTable5BugHunt regenerates the bug-discovery matrix on both cores.
func BenchmarkTable5BugHunt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard, 60, int64(i)+1)
	}
}

// BenchmarkLivenessAnalysis regenerates the §6.3 liveness evaluation over
// SpecDoctor phase-3 positives.
func BenchmarkLivenessAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Liveness(io.Discard, 12, int64(i)+1)
	}
}

// --- campaign engine scaling -----------------------------------------------

// benchCampaign runs one fixed-size campaign per b.N and reports fuzzing
// iterations per second. The campaign options are identical across worker
// counts (the engine guarantees identical results), so the benchmarks
// measure pure scheduling overhead and scaling.
func benchCampaign(b *testing.B, workers int) {
	const iterations = 64
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions(uarch.KindBOOM)
		opts.Seed = 42
		opts.Iterations = iterations
		opts.Workers = workers
		opts.MergeEvery = 16
		core.NewFuzzer(opts).Run()
	}
	b.ReportMetric(float64(iterations*b.N)/b.Elapsed().Seconds(), "iters/s")
}

// BenchmarkCampaignWorkers1 is the sequential baseline for the sharded
// campaign engine.
func BenchmarkCampaignWorkers1(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignWorkers8 measures the same campaign with 8 workers; on an
// 8-core runner its iters/s should be ≥3× the Workers1 baseline (on fewer
// cores it degrades gracefully — results stay identical either way).
func BenchmarkCampaignWorkers8(b *testing.B) { benchCampaign(b, 8) }

// --- ablation benches (DESIGN.md §4) ---------------------------------------

// BenchmarkAblationTrainingReduction compares Phase 1 with and without the
// training-reduction strategy.
func BenchmarkAblationTrainingReduction(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions(uarch.KindBOOM)
			opts.UseReduction = on
			f := core.NewFuzzer(opts)
			for i := 0; i < b.N; i++ {
				st := f.MeasureTraining(gen.TrigBranchMispred, gen.VariantDerived, 2)
				if on && st.Triggerable() && st.AvgETO == 0 {
					b.Fatal("reduced training reported zero effective overhead")
				}
			}
		})
	}
}

// BenchmarkAblationCoverageFeedback compares campaigns with and without
// taint-coverage-guided mutation (DejaVuzz vs DejaVuzz−).
func BenchmarkAblationCoverageFeedback(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "feedback-off"
		if on {
			name = "feedback-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions(uarch.KindBOOM)
				opts.Iterations = 25
				opts.Seed = int64(i) + 1
				opts.UseCoverageFeedback = on
				core.NewFuzzer(opts).Run()
			}
		})
	}
}

// BenchmarkAblationLiveness compares leakage analysis with and without
// tainted-sink liveness annotations.
func BenchmarkAblationLiveness(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "liveness-off"
		if on {
			name = "liveness-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions(uarch.KindBOOM)
				opts.Iterations = 25
				opts.Seed = int64(i) + 3
				opts.UseLiveness = on
				core.NewFuzzer(opts).Run()
			}
		})
	}
}

// BenchmarkSimulationThroughput measures raw core-simulation speed in each
// tracking mode (the Table 4 simulation rows, normalised per cycle).
func BenchmarkSimulationThroughput(b *testing.B) {
	poc := experiments.Meltdown()
	cfg := uarch.BOOMConfig()
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.RunSingle(poc.Schedule.Clone(), core.RunOpts{Cfg: cfg, MaxCycles: 4000})
		}
	})
	b.Run("cellift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.RunSingle(poc.Schedule.Clone(), core.RunOpts{
				Cfg: cfg, Mode: uarch.IFTCellIFT, TaintTrace: true, MaxCycles: 4000,
			})
		}
	})
	b.Run("diffift", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.RunDiff(poc.Schedule.Clone(), core.RunOpts{Cfg: cfg, TaintTrace: true, MaxCycles: 4000})
		}
	})
}
