package dejavuzz

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dejavuzz/internal/atomicfile"
	"dejavuzz/internal/core"
	"dejavuzz/internal/scenario"
)

// ErrInterrupted is returned by Session.Wait when the session stopped at a
// merge barrier (context cancellation or Pause) instead of completing. The
// session's Checkpoint resumes it.
var ErrInterrupted = errors.New("dejavuzz: session interrupted; resume from its checkpoint")

// Campaign is a configured fuzzing campaign over one registered target.
// It is a factory: Run and Start may be called any number of times, each
// executing the campaign from scratch (use Resume to continue a checkpoint).
type Campaign struct {
	target   core.Target
	opts     core.Options
	ckptPath string

	mu      sync.Mutex
	lastCov int // coverage of the most recent blocking Run
}

// New builds a campaign for a registered target name ("boom", "xiangshan",
// "isasim", or anything added with RegisterTarget) with functional options
// applied over the target's defaults.
func New(target string, opts ...Option) (*Campaign, error) {
	t, err := core.LookupTarget(target)
	if err != nil {
		return nil, err
	}
	s := settings{opts: core.DefaultOptionsFor(t)}
	for _, o := range opts {
		o(&s)
	}
	s.opts.Target = t.Name() // options never change the target
	if err := core.ValidateScenarios(s.opts.Scenarios); err != nil {
		return nil, fmt.Errorf("dejavuzz: %w", err)
	}
	if err := core.ValidateSchedulerPolicy(s.opts.Scheduler); err != nil {
		return nil, fmt.Errorf("dejavuzz: %w", err)
	}
	fams := s.opts.Scenarios
	if len(fams) == 0 {
		fams = scenario.Names()
	}
	if err := core.ValidateWarmStart(s.opts.WarmSeeds, s.opts.FrontierPrior, fams); err != nil {
		return nil, fmt.Errorf("dejavuzz: %w", err)
	}
	if s.ckptPath != "" {
		// Fail the dominant misconfiguration (missing/unwritable checkpoint
		// directory) here, where there is an error path — autosave failures
		// during a run are only visible as CheckpointSaved events.
		if err := atomicfile.ProbeDir(s.ckptPath); err != nil {
			return nil, fmt.Errorf("dejavuzz: checkpoint path not writable: %w", err)
		}
	}
	return &Campaign{target: t, opts: s.opts, ckptPath: s.ckptPath}, nil
}

// Target returns the campaign's design under test.
func (c *Campaign) Target() Target { return c.target }

// Run executes the campaign to completion and returns its report — the
// blocking convenience path. Reports are deterministic in the campaign's
// options: Workers only changes wall time. WithCheckpointFile is honoured
// here too: Run drives a session internally, so barriers autosave exactly
// as they do under Start.
func (c *Campaign) Run() *Report {
	var rep *Report
	if c.ckptPath != "" {
		// The context is never cancelled, so the session always completes
		// and Wait cannot return an error.
		s, err := c.Start(context.Background())
		if err != nil {
			panic(err) // unreachable: launch errors only on resume
		}
		for range s.Events() {
		}
		rep, _ = s.Wait()
	} else {
		rep = core.NewFuzzer(c.opts).Run()
	}
	c.mu.Lock()
	c.lastCov = rep.Coverage
	c.mu.Unlock()
	return rep
}

// Coverage returns the taint-coverage point count of the most recent
// blocking Run (0 before the first).
func (c *Campaign) Coverage() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastCov
}

// Start launches the campaign as a streaming session. Events arrive on
// Session.Events at the engine's deterministic merge barriers; cancelling
// ctx stops the campaign at the next barrier and the session ends with a
// resumable checkpoint instead of a report.
func (c *Campaign) Start(ctx context.Context) (*Session, error) {
	return c.launch(ctx, nil)
}

// Resume continues a checkpointed session. The checkpoint must come from a
// campaign with determinism-equivalent options (Workers may differ); the
// resumed campaign's final report is identical — modulo wall-clock fields —
// to an uninterrupted run.
func (c *Campaign) Resume(ctx context.Context, ck *Checkpoint) (*Session, error) {
	if ck == nil || ck.state == nil {
		return nil, errors.New("dejavuzz: Resume: nil checkpoint")
	}
	return c.launch(ctx, ck.state)
}

// EventKind classifies session events.
type EventKind int

const (
	// EventEpoch is emitted at every merge barrier with campaign progress.
	EventEpoch EventKind = iota
	// EventFinding is emitted (before the barrier's EventEpoch) once per
	// finding merged at the barrier, in iteration order.
	EventFinding
	// EventCheckpointSaved is emitted after a barrier checkpoint autosave
	// (sessions started with WithCheckpointFile); Err carries a save failure.
	EventCheckpointSaved
	// EventDone is the final event: Report on completion, Checkpoint (and
	// ErrInterrupted in Err) on interruption. The channel closes after it.
	EventDone
)

func (k EventKind) String() string {
	switch k {
	case EventEpoch:
		return "epoch"
	case EventFinding:
		return "finding"
	case EventCheckpointSaved:
		return "checkpoint-saved"
	case EventDone:
		return "done"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one session event. Done/Total/Coverage carry campaign progress
// on every kind; the remaining fields are kind-specific.
type Event struct {
	Kind EventKind

	// Done/Total are completed and total campaign iterations; Coverage is
	// the merged coverage point count.
	Done, Total, Coverage int

	// Scenarios carries the cumulative per-family statistics — picks,
	// coverage yield, findings, adaptive sampling weight — as of the
	// barrier that emitted the event (EventEpoch only).
	Scenarios []ScenarioStat

	// Harvest carries the barrier's corpus-worthy seeds — coverage-feedback
	// keepers and finding producers, with their evidence — in iteration
	// order (EventEpoch only). dvz-server's corpus store persists them
	// across campaigns; other consumers may ignore the field.
	Harvest []HarvestedSeed

	// Finding is the merged finding (EventFinding).
	Finding *Finding
	// Path is the checkpoint file written (EventCheckpointSaved).
	Path string
	// Report is the final report (EventDone, completed sessions).
	Report *Report
	// Checkpoint resumes the campaign (EventDone, interrupted sessions).
	Checkpoint *Checkpoint
	// Err carries ErrInterrupted on interrupted EventDone and autosave
	// failures on EventCheckpointSaved.
	Err error
}

// maxEventBuffer bounds a session's event-channel buffer. The worst-case
// event count is one per iteration (findings) plus two per barrier, so
// campaigns up to ~32k iterations get the full never-blocks guarantee;
// beyond that the engine applies backpressure at barriers until the
// consumer drains (see Events and Wait).
const maxEventBuffer = 1 << 15

// maxAutosaves bounds how many barrier autosaves a session performs over
// its lifetime (WithCheckpointFile), keeping total checkpoint I/O roughly
// linear in campaign length.
const maxAutosaves = 64

// Session is one streaming execution of a campaign.
type Session struct {
	events chan Event
	done   chan struct{}
	cancel context.CancelFunc

	mu     sync.Mutex
	report *Report
	ckpt   *Checkpoint
	err    error

	// Fan-out observers (Subscribe). Guarded by subMu, not mu: broadcast
	// runs on the engine goroutine at every event and must never contend
	// with Wait/Checkpoint holders of mu.
	subMu      sync.Mutex
	subs       map[int]chan Event
	nextSub    int
	subsClosed bool
	// subDropped counts events shed per best-effort subscriber buffer (see
	// Subscribe: the engine never blocks on an observer); dropped is the
	// session-lifetime total across all subscribers, including ones that
	// have since unsubscribed. Guarded by subMu. /metrics exposes the
	// counters so silent SSE loss under load is observable.
	subDropped map[int]int64
	dropped    int64
}

// defaultSubscriberBuffer is the Subscribe channel buffer when the caller
// passes a non-positive size.
const defaultSubscriberBuffer = 256

// Subscribe registers an additional observer of the session's event stream
// and returns its channel plus a cancel function that unsubscribes (always
// call it when done, or the subscription lives until the session ends).
//
// Subscribers are independent of the primary Events channel and of each
// other: every event is delivered to the primary stream and to every
// subscriber, so any number of consumers — a progress bar, an HTTP event
// stream per client, a findings recorder — can watch one session without
// splitting events between them. A subscription observes events from the
// moment it is taken; earlier events are not replayed.
//
// Delivery to subscribers is best-effort: the engine never blocks on an
// observer, so a subscriber that falls more than buf events behind misses
// the overflow (the primary Events channel keeps the lossless guarantee —
// use it for authoritative consumption). The channel closes when the
// session ends or the subscription is cancelled; a Subscribe after the
// session ended returns an already-closed channel.
func (s *Session) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = defaultSubscriberBuffer
	}
	ch := make(chan Event, buf)
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed {
		close(ch)
		return ch, func() {}
	}
	if s.subs == nil {
		s.subs = make(map[int]chan Event)
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	return ch, func() {
		s.subMu.Lock()
		defer s.subMu.Unlock()
		if c, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(c)
		}
	}
}

// broadcast fans one event out to every subscriber, dropping it for
// subscribers whose buffers are full (see Subscribe).
func (s *Session) broadcast(ev Event) {
	s.subMu.Lock()
	//dvz:ordered each subscriber's own stream stays in emit order; which subscriber is offered the event first is unobservable (per-channel buffers are independent) and the drop counters are commutative increments
	for id, ch := range s.subs {
		select {
		case ch <- ev:
		default:
			if s.subDropped == nil {
				s.subDropped = make(map[int]int64)
			}
			s.subDropped[id]++
			s.dropped++
		}
	}
	s.subMu.Unlock()
}

// DroppedEvents reports how many events the session has shed across all
// best-effort subscriber buffers over its lifetime (0 while every
// subscriber keeps up). The primary Events channel is lossless and never
// contributes here.
func (s *Session) DroppedEvents() int64 {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return s.dropped
}

// closeSubs ends every subscription; later Subscribes get closed channels.
func (s *Session) closeSubs() {
	s.subMu.Lock()
	s.subsClosed = true
	//dvz:ordered closes and forgets every subscriber channel; close order across independent channels is unobservable
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
	s.subMu.Unlock()
}

// emit delivers one event from the engine goroutine. The buffer normally
// absorbs it immediately; when full (only possible above maxEventBuffer
// pending events), the send blocks until the consumer drains — unless the
// session is cancelled, in which case the event is dropped rather than
// wedging the stopping engine (the channel still closes, so consumers
// never hang).
func (s *Session) emit(ctx context.Context, ev Event) {
	s.broadcast(ev)
	select {
	case s.events <- ev:
		return
	default:
	}
	select {
	case s.events <- ev:
	case <-ctx.Done():
	}
}

// launch starts the engine goroutine, fresh or from a snapshot.
func (c *Campaign) launch(ctx context.Context, state *core.EngineState) (*Session, error) {
	opts := c.opts
	norm := opts.Normalized()
	remaining := norm.Iterations
	if state != nil {
		remaining = norm.Iterations - state.NextIter
		if remaining < 0 {
			remaining = 0
		}
	}
	epochs := (remaining + norm.MergeEvery - 1) / norm.MergeEvery

	// The channel buffer fits every event the engine can emit (per barrier:
	// its findings, one epoch, at most one checkpoint-saved; plus the final
	// done), capped so session memory stays bounded for very long
	// campaigns. Under the cap the engine never blocks on a slow (or
	// absent) consumer; above it, barrier emission applies backpressure —
	// see Session.emit for the cancellation escape hatch.
	buffer := remaining + 2*epochs + 4
	if buffer > maxEventBuffer {
		buffer = maxEventBuffer
	}
	s := &Session{
		events: make(chan Event, buffer),
		done:   make(chan struct{}),
	}
	ctx, s.cancel = context.WithCancel(ctx)

	// Autosave cadence: a snapshot serialises the whole campaign history,
	// so saving every barrier would cost O(n²) encoding/IO over a long
	// campaign. Throttle to ~maxAutosaves total (deterministic in the
	// options; the interrupt path below covers the gap since the last
	// save), every barrier for short campaigns.
	totalEpochs := (norm.Iterations + norm.MergeEvery - 1) / norm.MergeEvery
	saveEvery := 1
	if totalEpochs > maxAutosaves {
		saveEvery = (totalEpochs + maxAutosaves - 1) / maxAutosaves
	}

	// lastSaved tracks the iteration count the latest successful barrier
	// autosave covered. Barrier hooks and the completion path below both
	// run on the engine goroutine, so no locking is needed.
	lastSaved := -1
	opts.OnBarrier = func(b *core.Barrier) {
		for i := range b.Findings {
			f := b.Findings[i]
			s.emit(ctx, Event{Kind: EventFinding, Finding: &f,
				Done: b.Done, Total: b.Total, Coverage: b.Coverage})
		}
		s.emit(ctx, Event{Kind: EventEpoch, Done: b.Done, Total: b.Total, Coverage: b.Coverage,
			Scenarios: b.Scenarios, Harvest: b.Harvest})
		if c.ckptPath != "" && (b.Epoch+1)%saveEvery == 0 {
			ck := &Checkpoint{state: b.Snapshot()}
			err := ck.Save(c.ckptPath)
			if err == nil {
				lastSaved = b.Done
			}
			s.emit(ctx, Event{Kind: EventCheckpointSaved, Path: c.ckptPath, Err: err,
				Done: b.Done, Total: b.Total, Coverage: b.Coverage})
		}
	}

	var f *core.Fuzzer
	if state == nil {
		f = core.NewFuzzer(opts)
	} else {
		var err error
		f, err = core.NewFuzzerFromState(state, opts)
		if err != nil {
			s.cancel()
			return nil, err
		}
	}

	total := norm.Iterations
	go func() {
		defer s.cancel()
		rep, st := f.RunContext(ctx)
		s.mu.Lock()
		if rep != nil {
			s.report = rep
			s.mu.Unlock()
			s.emit(ctx, Event{Kind: EventDone, Report: rep,
				Done: total, Total: total, Coverage: rep.Coverage})
		} else {
			ck := &Checkpoint{state: st}
			s.ckpt = ck
			s.err = ErrInterrupted
			s.mu.Unlock()
			done, _ := ck.Progress()
			if c.ckptPath != "" && lastSaved != done {
				// Final autosave, needed only when cancellation landed
				// before a barrier autosave covered this state (e.g. before
				// the first barrier, or after a failed save). Surfaced like
				// barrier autosaves, so a failure (the checkpoint then
				// exists only in-process via the Done event) is never
				// silent.
				err := ck.Save(c.ckptPath)
				s.emit(ctx, Event{Kind: EventCheckpointSaved, Path: c.ckptPath, Err: err,
					Done: done, Total: total, Coverage: len(st.Coverage)})
			}
			s.emit(ctx, Event{Kind: EventDone, Checkpoint: ck, Err: ErrInterrupted,
				Done: done, Total: total, Coverage: len(st.Coverage)})
		}
		close(s.events)
		s.closeSubs()
		close(s.done)
	}()
	return s, nil
}

// Events returns the session's event stream. Events are emitted at the
// engine's deterministic merge barriers — the same options always produce
// the same stream — and the channel closes after EventDone. Consumers may
// read lazily or not at all: the engine never blocks on the channel while
// the campaign's event count fits the session buffer (see maxEventBuffer);
// for longer campaigns, drain the stream (or cancel the context).
func (s *Session) Events() <-chan Event { return s.events }

// Done is closed when the session ends (completed or interrupted).
func (s *Session) Done() <-chan struct{} { return s.done }

// Wait blocks until the session ends. It returns the report on completion,
// or a nil report and ErrInterrupted when the session stopped at a barrier
// (retrieve the resume state with Checkpoint). For campaigns whose event
// stream exceeds the session buffer (see maxEventBuffer), drain Events
// before — or concurrently with — Wait, or the engine's backpressure and
// Wait deadlock against each other.
func (s *Session) Wait() (*Report, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report, s.err
}

// Pause stops the session at the next merge barrier and returns its
// resumable checkpoint. A nil checkpoint (and nil error) means the campaign
// completed before the barrier; its report is available from Wait.
func (s *Session) Pause() (*Checkpoint, error) {
	s.cancel()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt, nil
}

// Checkpoint returns the session's resume state: non-nil only after an
// interrupted session ends.
func (s *Session) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt
}
