package dejavuzz_test

import (
	"context"
	"fmt"

	"dejavuzz"
)

// ExampleNew is the documented quick start: build a campaign for a
// registered target with functional options and run it to completion.
func ExampleNew() {
	c, err := dejavuzz.New("boom",
		dejavuzz.WithSeed(1),
		dejavuzz.WithIterations(16),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	report := c.Run()
	fmt.Printf("iterations: %d\n", len(report.Iters))
	fmt.Printf("collected coverage: %v\n", report.Coverage > 0)
	// Output:
	// iterations: 16
	// collected coverage: true
}

// ExampleSession_events streams a campaign: epoch and finding events arrive
// at the engine's deterministic merge barriers, and the channel closes
// after the final Done event.
func ExampleSession_events() {
	c, err := dejavuzz.New("isasim",
		dejavuzz.WithSeed(7),
		dejavuzz.WithIterations(32),
		dejavuzz.WithMergeEvery(8),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	session, err := c.Start(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	epochs := 0
	for ev := range session.Events() {
		switch ev.Kind {
		case dejavuzz.EventEpoch:
			epochs++
		case dejavuzz.EventDone:
			fmt.Printf("epochs streamed: %d\n", epochs)
			fmt.Printf("completed: %v\n", ev.Report != nil)
		}
	}
	// Output:
	// epochs streamed: 4
	// completed: true
}
