package dejavuzz_test

import (
	"testing"

	"dejavuzz"
)

// benchConfigReport runs the exact BENCH_campaign.json configuration —
// boom target, seed 42, 128 iterations, 16-iteration epochs, Workers=1 —
// under the given scheduler policy.
func benchConfigReport(t *testing.T, policy string) *dejavuzz.Report {
	t.Helper()
	c, err := dejavuzz.New(dejavuzz.DefaultTarget,
		dejavuzz.WithSeed(42),
		dejavuzz.WithIterations(128),
		dejavuzz.WithMergeEvery(16),
		dejavuzz.WithScheduler(policy),
	)
	if err != nil {
		t.Fatal(err)
	}
	return c.Run()
}

// TestBenchCampaignNoStarvationUnderUCB is the starvation regression at the
// committed benchmark configuration: under the default UCB policy, every
// registered family must record at least one pick within 128 iterations.
// This exact campaign is what BENCH_campaign.json is generated from, and
// under the legacy EMA policy it left families at zero picks — the
// companion test below keeps that failure mode reproducible.
func TestBenchCampaignNoStarvationUnderUCB(t *testing.T) {
	rep := benchConfigReport(t, dejavuzz.SchedulerUCB)
	if got, want := len(rep.Scenarios), len(dejavuzz.Scenarios()); got != want {
		t.Fatalf("report has %d scenario rows, registry has %d", got, want)
	}
	for _, sc := range rep.Scenarios {
		if sc.Picks == 0 {
			t.Errorf("family %q starved: 0 picks in 128 iterations under ucb", sc.Name)
		}
	}
}

// TestBenchCampaignStarvesUnderEMA pins the bug the bandit fixed, so the
// -scheduler=ema A/B baseline stays meaningful: the same campaign under
// the legacy policy must leave at least one family unpicked. If this test
// ever fails, the EMA starvation bug has silently disappeared and the
// policy comparison in dvz-bench no longer demonstrates anything.
func TestBenchCampaignStarvesUnderEMA(t *testing.T) {
	rep := benchConfigReport(t, dejavuzz.SchedulerEMA)
	starved := 0
	for _, sc := range rep.Scenarios {
		if sc.Picks == 0 {
			starved++
		}
	}
	if starved == 0 {
		t.Fatal("no family starved under ema at the bench configuration; the regression baseline is gone")
	}
}
