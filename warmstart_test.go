package dejavuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dejavuzz/internal/core"
	"dejavuzz/internal/gen"
)

// harvestWarmStart runs a donor session and folds its epoch harvests into a
// WarmStart set — the same derivation dvz-server's corpus store performs,
// done inline so the root-level tests need no server.
func harvestWarmStart(t *testing.T) WarmStart {
	t.Helper()
	c, err := New("boom", WithSeed(7), WithIterations(32), WithMergeEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	session, err := c.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var seeds []Seed
	agg := map[string]*FamilyPrior{}
	for ev := range session.Events() {
		if ev.Kind != EventEpoch {
			continue
		}
		for _, h := range ev.Harvest {
			seeds = append(seeds, h.Seed)
			name := gen.ScenarioName(h.Seed)
			p := agg[name]
			if p == nil {
				p = &FamilyPrior{Name: name}
				agg[name] = p
			}
			p.Picks++
			p.Points += h.NewPoints
			if h.Finding {
				p.Findings++
			}
		}
	}
	if _, err := session.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("donor session harvested nothing; warm-start test is vacuous")
	}
	if len(seeds) > 8 {
		seeds = seeds[:8]
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	prior := make([]FamilyPrior, 0, len(names))
	for _, n := range names {
		prior = append(prior, *agg[n])
	}
	return WarmStart{Snapshot: "cs-1122334455667788", Seeds: seeds, Prior: prior}
}

// TestWarmStartDeterministicAcrossWorkers: a warm-started campaign built
// through the public options API yields identical reports at any worker
// count, and the warm set genuinely changes the campaign versus a cold run
// of the same seed.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	ws := harvestWarmStart(t)
	mk := func(workers int, warm bool) *Report {
		opts := []Option{WithSeed(43), WithIterations(48), WithMergeEvery(8), WithWorkers(workers)}
		if warm {
			opts = append(opts, WithWarmStart(ws))
		}
		c, err := New("boom", opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run()
	}
	// reportFingerprint keeps Report.Options, which legitimately differs in
	// Workers here; results-only comparison zeroes the whole options block
	// (Workers is the one knob that must not affect anything else).
	results := func(rep *Report) []byte {
		r := *rep
		r.Duration = 0
		r.FirstBug = 0
		r.Options = core.Options{}
		b, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := mk(1, true)
	if !bytes.Equal(results(ref), results(mk(8, true))) {
		t.Error("warm-started report diverges between Workers=1 and Workers=8")
	}
	if bytes.Equal(results(ref), results(mk(1, false))) {
		t.Error("warm-started report identical to cold run; warm seeds had no effect")
	}
}

// TestWarmStartSessionCancelResumeDeterministic: a warm-started session
// cancelled at a barrier resumes byte-identically from its checkpoint, and
// resuming the checkpoint under a different corpus snapshot fails with an
// option-mismatch error naming corpus_snapshot.
func TestWarmStartSessionCancelResumeDeterministic(t *testing.T) {
	ws := harvestWarmStart(t)
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	mk := func(extra ...Option) *Campaign {
		opts := append([]Option{
			WithSeed(43), WithIterations(48), WithMergeEvery(8), WithWorkers(2), WithWarmStart(ws),
		}, extra...)
		c, err := New("boom", opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	uninterrupted := mk().Run()

	ck := midCampaignCheckpoint(t, mk(), 16)
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := mk().Resume(context.Background(), loaded)
	if err != nil {
		t.Fatal(err)
	}
	for range resumed.Events() {
	}
	rep, err := resumed.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportFingerprint(t, uninterrupted), reportFingerprint(t, rep)) {
		t.Error("warm cancel+resume report differs from uninterrupted run")
	}

	// The checkpoint pins the snapshot ID: a campaign resolved against a
	// different (e.g. since-grown) corpus snapshot must be refused, and the
	// error must name the drifted option so the operator knows why.
	drifted := ws
	drifted.Snapshot = "cs-8877665544332211"
	if _, err := mk(WithWarmStart(drifted)).Resume(context.Background(), loaded); err == nil {
		t.Error("resume accepted a checkpoint under a different corpus snapshot")
	} else if !strings.Contains(err.Error(), "corpus_snapshot") {
		t.Errorf("snapshot-mismatch error does not name corpus_snapshot: %v", err)
	}
}

// TestNewRejectsWarmSeedOutsideScenarios: warm seeds and prior rows must
// belong to the campaign's enabled scenario set.
func TestNewRejectsWarmSeedOutsideScenarios(t *testing.T) {
	fams := Scenarios()
	if len(fams) < 2 {
		t.Fatal("need at least two registered families")
	}
	outside := WarmStart{
		Snapshot: "cs-0000000000000001",
		Seeds:    []Seed{{Scenario: fams[0]}},
	}
	if _, err := New("boom", WithScenarios(fams[1]), WithWarmStart(outside)); err == nil {
		t.Error("New accepted a warm seed from a family outside the campaign's scenario set")
	}
	if _, err := New("boom", WithScenarios(fams[0]), WithWarmStart(outside)); err != nil {
		t.Errorf("New rejected a warm seed from an enabled family: %v", err)
	}
	badPrior := WarmStart{
		Snapshot: "cs-0000000000000002",
		Prior:    []FamilyPrior{{Name: "warp-drive"}},
	}
	if _, err := New("boom", WithWarmStart(badPrior)); err == nil {
		t.Error("New accepted a frontier prior for an unregistered family")
	}
}

// TestSessionDroppedEventsCounter: a subscriber that never drains its
// 1-slot buffer forces best-effort drops, which the session counts; the
// lossless primary stream is unaffected.
func TestSessionDroppedEventsCounter(t *testing.T) {
	c, err := New("boom", WithSeed(11), WithIterations(64), WithMergeEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	session, err := c.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	laggy, cancelSub := session.Subscribe(1)
	defer cancelSub()

	events := 0
	for range session.Events() {
		events++
	}
	if _, err := session.Wait(); err != nil {
		t.Fatal(err)
	}
	if dropped := session.DroppedEvents(); dropped == 0 {
		t.Error("no drops counted despite an undrained 1-slot subscriber")
	} else if int(dropped) >= events {
		t.Errorf("counted %d drops but only %d events streamed", dropped, events)
	}
	// The one buffered event (plus the drop accounting) is all the laggy
	// subscriber ever got.
	if got := len(laggy); got != 1 {
		t.Errorf("laggy subscriber buffer holds %d events, want 1", got)
	}
}
