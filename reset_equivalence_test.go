package dejavuzz

import (
	"reflect"
	"testing"

	"dejavuzz/internal/core"
)

// TestResetEquivalenceAllTargets is the cross-target acceptance test for
// per-shard execution-context reuse: for every registered target (the two
// cycle-accurate uarch cores and the architectural isasim pair), a campaign
// run with long-lived contexts must produce a report byte-identical —
// modulo the wall-clock Duration/FirstBug fields — to a run that constructs
// all DUT state from scratch on every simulation, at Workers=1 and
// Workers=8. CI runs this under -race, so it also proves shard contexts
// share no mutable state.
func TestResetEquivalenceAllTargets(t *testing.T) {
	for _, target := range Targets() {
		t.Run(target, func(t *testing.T) {
			iterations := 48
			if target == "isasim" {
				iterations = 128 // cheap target; more iterations, more reuse
			} else if testing.Short() {
				iterations = 24
			}
			opts := func(workers int, freshCtx bool) core.Options {
				o := core.DefaultOptions(0)
				o.Target = target
				o.Seed = 42
				o.Iterations = iterations
				o.Workers = workers
				o.MergeEvery = 16
				o.FreshContexts = freshCtx
				return o.Normalized()
			}
			type print struct {
				Findings []core.Finding
				Iters    []core.IterStat
				Coverage int
				Sims     int
			}
			run := func(workers int, freshCtx bool) print {
				rep := core.NewFuzzer(opts(workers, freshCtx)).Run()
				return print{rep.Findings, rep.Iters, rep.Coverage, rep.Sims}
			}

			want := run(1, true) // per-simulation fresh construction
			if want.Coverage == 0 {
				t.Fatalf("fresh-construction reference campaign for %s collected no coverage", target)
			}
			for _, workers := range []int{1, 8} {
				got := run(workers, false) // context reuse
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d: context-reuse report diverges from fresh-construction report", workers)
				}
			}
		})
	}
}
