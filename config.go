package dejavuzz

import "dejavuzz/internal/core"

// Config is the original struct-based campaign configuration.
//
// Deprecated: use New with a target name and functional options, which has
// no zero-value ambiguity (WithSeed(0) is seed zero, WithIterations(0) is
// an empty dry run). Config remains as a compatibility shim: zero values
// select the historical defaults (BOOM core, seed 1, 100 iterations, all
// analyses enabled), and the SeedSet/IterationsSet markers make the
// otherwise-unselectable explicit zeros reachable.
//
// Note that New itself changed signature in this redesign — it now takes a
// target name and options. Callers of the old New(Config) form get a
// compile-time error and migrate mechanically to NewFromConfig(Config)
// (identical behaviour) or, preferably, to New with options (see the
// README's migration table).
type Config struct {
	// Core is the design under test (BOOM or XiangShan).
	Core CoreKind
	// Seed is the campaign's RNG seed. A zero Seed historically meant
	// "unset" (default seed 1); set SeedSet to run with seed 0.
	Seed int64
	// SeedSet marks Seed as explicit, making seed 0 selectable.
	SeedSet bool
	// Iterations is the number of fuzzing iterations to run. A
	// non-positive value historically meant "unset" (default 100); set
	// IterationsSet to run an explicit 0-iteration dry run.
	Iterations int
	// IterationsSet marks Iterations as explicit, making a 0-iteration
	// dry run selectable.
	IterationsSet bool
	// Workers sets the number of parallel simulation workers. Reports are
	// identical for any Workers value: parallelism only changes wall time.
	Workers int
	// Shards sets the number of deterministic logical shards (default 8).
	// Unlike Workers, changing Shards changes the campaign's stimulus
	// streams and therefore its results.
	Shards int
	// Variant selects Derived (DejaVuzz) or RandomTraining (DejaVuzz*).
	Variant Variant
	// DisableCoverageFeedback yields the DejaVuzz− ablation.
	DisableCoverageFeedback bool
	// DisableLiveness disables tainted-sink liveness filtering.
	DisableLiveness bool
	// DisableReduction disables training reduction.
	DisableReduction bool
	// Bugless disables the injected bugs (regression baseline).
	Bugless bool
}

// toOptions lowers the shim onto the engine options, distinguishing unset
// from explicit zero via the Set markers.
func (cfg Config) toOptions() core.Options {
	opts := core.DefaultOptions(cfg.Core)
	if cfg.Seed != 0 || cfg.SeedSet {
		opts.Seed = cfg.Seed
	}
	if cfg.Iterations > 0 || cfg.IterationsSet {
		opts.Iterations = cfg.Iterations
	}
	if cfg.Workers > 0 {
		opts.Workers = cfg.Workers
	}
	if cfg.Shards > 0 {
		opts.Shards = cfg.Shards
	}
	opts.Variant = cfg.Variant
	opts.UseCoverageFeedback = !cfg.DisableCoverageFeedback
	opts.UseLiveness = !cfg.DisableLiveness
	opts.UseReduction = !cfg.DisableReduction
	opts.Bugless = cfg.Bugless
	return opts
}

// Fuzzer is the blocking campaign handle the original API returned.
//
// Deprecated: it is now an alias of Campaign; new code should use New and
// either Campaign.Run or the streaming Campaign.Start.
type Fuzzer = Campaign

// NewFromConfig constructs a blocking fuzzer from the deprecated Config.
//
// Deprecated: use New with functional options.
func NewFromConfig(cfg Config) *Fuzzer {
	opts := cfg.toOptions()
	t, err := core.LookupTarget(opts.Target)
	if err != nil {
		// Unreachable: Config can only name the built-in core kinds, whose
		// targets are always registered.
		panic(err)
	}
	return &Campaign{target: t, opts: opts}
}
